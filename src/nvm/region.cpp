#include "nvm/region.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/env.hpp"
#include "util/rand.hpp"
#include "util/telemetry.hpp"
#include "util/timing.hpp"

namespace montage::nvm {

namespace {
std::atomic<int> next_region_tid{0};
thread_local int region_tid = -1;

int my_region_tid() {
  if (region_tid < 0) {
    region_tid = next_region_tid.fetch_add(1, std::memory_order_relaxed) %
                 Region::kMaxThreads;
  }
  return region_tid;
}

Region* g_region = nullptr;
}  // namespace

Region::Region(const RegionOptions& opts) : opts_(opts) {
  // Every Montage stack constructs a Region first, so this is the central
  // hook for the telemetry knobs (MONTAGE_TRACE / MONTAGE_STATS); malformed
  // values throw here, like the fault-injection knobs below.
  telemetry::init_from_env();
  if (opts_.size < kHeaderSize * 2) {
    throw std::invalid_argument("nvm::Region: size too small");
  }
  bool fresh = true;
  if (!opts_.path.empty()) {
    fd_ = ::open(opts_.path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) throw std::runtime_error("nvm::Region: cannot open " + opts_.path);
    struct stat st{};
    ::fstat(fd_, &st);
    fresh = static_cast<std::size_t>(st.st_size) < opts_.size;
    if (::ftruncate(fd_, static_cast<off_t>(opts_.size)) != 0) {
      ::close(fd_);
      throw std::runtime_error("nvm::Region: ftruncate failed");
    }
    void* p = ::mmap(nullptr, opts_.size, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd_, 0);
    if (p == MAP_FAILED) {
      ::close(fd_);
      throw std::runtime_error("nvm::Region: mmap failed");
    }
    base_ = static_cast<char*>(p);
  } else {
    void* p = ::mmap(nullptr, opts_.size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) throw std::runtime_error("nvm::Region: mmap failed");
    base_ = static_cast<char*>(p);
  }

  auto* header_magic = reinterpret_cast<std::atomic<uint64_t>*>(base_);
  if (fresh || header_magic->load(std::memory_order_relaxed) != kMagic) {
    std::memset(base_, 0, kHeaderSize);
    header_magic->store(kMagic, std::memory_order_relaxed);
  } else {
    reopened_ = true;
  }

  pending_ = std::make_unique<PendingLines[]>(kMaxThreads);
  if (opts_.mode == PersistMode::kTracked) {
    shadow_ = std::make_unique<char[]>(opts_.size);
    std::memcpy(shadow_.get(), base_, opts_.size);  // initial image is durable
    crash_at_.store(util::env_u64_checked("MONTAGE_CRASH_AT", 0),
                    std::memory_order_relaxed);
    if (const uint64_t at = util::env_u64_checked("MONTAGE_EIO_AT", 0);
        at != 0) {
      fail_events(at, util::env_u64_checked("MONTAGE_EIO_COUNT", 1));
    }
  }
  gauge_lines_ = telemetry::register_gauge(
      "nvm.lines_flushed", "lines", [this] { return lines_flushed_.read(); });
  gauge_fences_ = telemetry::register_gauge(
      "nvm.fences", "fences", [this] { return fences_.read(); });
}

Region::~Region() {
  // Unregister before tearing down the counters the gauge closures read,
  // then fold this region's totals into the process-wide cumulative
  // counters so stats dumped after teardown still account for it.
  telemetry::unregister_gauge(gauge_lines_);
  telemetry::unregister_gauge(gauge_fences_);
  telemetry::count(telemetry::Ctr::kNvmLinesFlushed, lines_flushed_.read());
  telemetry::count(telemetry::Ctr::kNvmFences, fences_.read());
  if (base_ != nullptr) ::munmap(base_, opts_.size);
  if (fd_ >= 0) ::close(fd_);
}

void Region::init_global(const RegionOptions& opts) {
  destroy_global();
  g_region = new Region(opts);
}

Region* Region::global() {
  assert(g_region != nullptr && "nvm::Region::init_global not called");
  return g_region;
}

void Region::destroy_global() {
  delete g_region;
  g_region = nullptr;
}

std::atomic<uint64_t>& Region::root(int i) {
  assert(i >= 0 && i < kNumRoots);
  // Roots start one line past the magic word so each has room to grow.
  return *reinterpret_cast<std::atomic<uint64_t>*>(base_ + kLine +
                                                   i * sizeof(uint64_t));
}

Region::PendingLines& Region::my_pending() { return pending_[my_region_tid()]; }

void Region::bump_event() {
  // Power already failed: nothing persists for anyone until simulate_crash()
  // takes the crash image and restores power for recovery. A concurrent
  // thread that kept committing here could move the durable epoch clock
  // past write-backs that died with the armed event (see region.hpp).
  if (frozen_.load(std::memory_order_acquire)) throw CrashPointException{};
  const uint64_t n = events_.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t target = crash_at_.load(std::memory_order_relaxed);
  // Fires on equality only — but the freeze above keeps the power off from
  // this throw until the harness calls simulate_crash().
  if (target != 0 && n == target) {
    frozen_.store(true, std::memory_order_release);
    telemetry::trace(telemetry::Ev::kCrashDump, n);
    dump_trace_annex();
    throw CrashPointException{};
  }
  const uint64_t from = eio_from_.load(std::memory_order_relaxed);
  if (from != 0 && n >= from &&
      n - from < eio_count_.load(std::memory_order_relaxed)) {
    telemetry::count(telemetry::Ctr::kNvmEioInjected);
    throw IoError{};
  }
}

void Region::persist(const void* addr, std::size_t len) {
  if (len == 0) return;
  assert(contains(addr));
  if (opts_.mode == PersistMode::kTracked) bump_event();
  const uint64_t first = line_of(addr);
  const uint64_t last = line_of(static_cast<const char*>(addr) + len - 1);
  const uint64_t nlines = last - first + 1;
  lines_flushed_.add(nlines);
  switch (opts_.mode) {
    case PersistMode::kPassthrough:
      break;
    case PersistMode::kLatency: {
      // clwb issue is cheap; the lines occupy this thread's write-pending
      // queue and drain at flush_latency_ns per line, concurrently with
      // further execution. A fence waits for the drain, and issuing into a
      // full queue stalls the issuer (backpressure).
      auto& pend = my_pending();
      const uint64_t now = util::now_ns();
      pend.drain_clock_ns = std::max(pend.drain_clock_ns, now) +
                            opts_.flush_latency_ns * nlines;
      if (pend.drain_clock_ns > now + opts_.wpq_backlog_ns) {
        util::spin_for_ns(pend.drain_clock_ns - now - opts_.wpq_backlog_ns);
      }
      break;
    }
    case PersistMode::kTracked: {
      auto& pend = my_pending();
      std::lock_guard lk(pend.m);
      for (uint64_t l = first; l <= last; ++l) pend.lines.push_back(l);
      break;
    }
  }
}

void Region::persist_lines(const uint64_t* lines, std::size_t n) {
  if (n == 0) return;
  switch (opts_.mode) {
    case PersistMode::kPassthrough:
      lines_flushed_.add(n);
      break;
    case PersistMode::kLatency: {
      lines_flushed_.add(n);
      auto& pend = my_pending();
      const uint64_t now = util::now_ns();
      pend.drain_clock_ns =
          std::max(pend.drain_clock_ns, now) + opts_.flush_latency_ns * n;
      if (pend.drain_clock_ns > now + opts_.wpq_backlog_ns) {
        util::spin_for_ns(pend.drain_clock_ns - now - opts_.wpq_backlog_ns);
      }
      break;
    }
    case PersistMode::kTracked: {
      // One persistence event per line: a crash schedule armed anywhere in
      // [1, n] fires mid-drain, leaving earlier lines issued and later ones
      // lost — exactly the partial-drain states enumeration must cover. On
      // IoError the caller retries the whole batch; re-appending lines that
      // already made it into the pending queue is harmless (the fence
      // commits each line once per appearance).
      auto& pend = my_pending();
      for (std::size_t i = 0; i < n; ++i) {
        bump_event();
        lines_flushed_.add(1);
        std::lock_guard lk(pend.m);
        pend.lines.push_back(lines[i]);
      }
      break;
    }
  }
}

void Region::fence() {
  if (opts_.mode == PersistMode::kTracked) bump_event();
  fences_.add();
  switch (opts_.mode) {
    case PersistMode::kPassthrough:
      break;
    case PersistMode::kLatency: {
      auto& pend = my_pending();
      const uint64_t now = util::now_ns();
      if (pend.drain_clock_ns > now) {
        const uint64_t wait = pend.drain_clock_ns - now;
        if (wait > 100'000) {
          // Long drains (epoch-boundary batches) sleep instead of spinning
          // so worker threads keep the core — mirroring that real drains
          // happen in the memory controller, not on the CPU.
          std::this_thread::sleep_for(std::chrono::nanoseconds(wait));
        } else {
          util::spin_for_ns(wait);
        }
        pend.drain_clock_ns = 0;
      }
      util::spin_for_ns(opts_.fence_latency_ns);
      break;
    }
    case PersistMode::kTracked: {
      // A drain covers the shared write-pending queue: commit every
      // thread's outstanding writes-back (see header). commit_m_ orders
      // whole-line shadow copies against concurrent fences and eviction
      // chaos (evict_random_lines from another thread).
      std::lock_guard commit_lk(commit_m_);
      for (int t = 0; t < kMaxThreads; ++t) {
        auto& pend = pending_[t];
        std::lock_guard lk(pend.m);
        for (uint64_t l : pend.lines) commit_line(l);
        pend.lines.clear();
      }
      break;
    }
  }
}

void Region::commit_line(uint64_t line) {
  std::memcpy(shadow_.get() + line * kLine, base_ + line * kLine, kLine);
}

void Region::simulate_crash() {
  assert(opts_.mode == PersistMode::kTracked &&
         "simulate_crash requires kTracked mode");
  // Callers quiesce worker threads first; unfenced writes-back die with the
  // "power failure" exactly as on hardware. Locks are still taken so a
  // straggling chaos thread cannot tear the restored image.
  std::lock_guard commit_lk(commit_m_);
  for (int t = 0; t < kMaxThreads; ++t) {
    auto& pend = pending_[t];
    std::lock_guard lk(pend.m);
    pend.lines.clear();
  }
  std::memcpy(base_, shadow_.get(), opts_.size);
  // Power restored: recovery's own persistence events count (and can be
  // crash-scheduled) normally from here.
  frozen_.store(false, std::memory_order_release);
}

void Region::evict_random_lines(uint64_t n, uint64_t seed) {
  assert(opts_.mode == PersistMode::kTracked);
  bump_event();
  util::Xorshift128Plus rng(seed);
  const uint64_t nlines = opts_.size / kLine;
  std::lock_guard commit_lk(commit_m_);
  for (uint64_t i = 0; i < n; ++i) commit_line(rng.next_bounded(nlines));
}

RegionStatsSnapshot Region::stats() const {
  return {lines_flushed_.read(), fences_.read()};
}

void Region::reset_stats() {
  lines_flushed_.reset();
  fences_.reset();
}

void Region::dump_trace_annex() {
  char buf[kTraceAnnexSize];
  const std::size_t n = telemetry::trace_serialize(buf, kTraceAnnexSize);
  if (n == 0) return;  // tracing off/empty or telemetry compiled out
  std::memcpy(base_ + kTraceAnnexOffset, buf, n);
  if (opts_.mode == PersistMode::kTracked) {
    // Commit the annex lines straight to the crash shadow, bypassing
    // persist()/fence() so no persistence events are counted and armed
    // crash schedules keep their numbering. Safe here: bump_event() runs
    // before persist/fence/evict take commit_m_ or any pending lock.
    std::lock_guard lk(commit_m_);
    const uint64_t first = line_of(base_ + kTraceAnnexOffset);
    const uint64_t last = line_of(base_ + kTraceAnnexOffset + n - 1);
    for (uint64_t l = first; l <= last; ++l) commit_line(l);
  }
}

std::vector<telemetry::TraceEvent> Region::crash_trace() const {
  return telemetry::trace_deserialize(base_ + kTraceAnnexOffset,
                                      kTraceAnnexSize);
}

}  // namespace montage::nvm
