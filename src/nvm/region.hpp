// Emulated NVM device.
//
// The paper runs on Optane DIMMs mapped DAX; stores become durable only after
// an explicit write-back (clwb) ordered by a fence (sfence). This module
// reproduces that contract on ordinary memory:
//
//  * kPassthrough — persist/fence only count events. Fastest; used when a
//    test does not care about persistence cost or semantics.
//  * kLatency     — models Optane's write path: issuing a write-back (clwb)
//    is nearly free, but each line occupies the (per-thread) write-pending
//    queue for flush_latency_ns; a fence must wait until every line this
//    thread flushed has drained, plus a fixed fence_latency_ns. Systems
//    that fence per operation therefore pay the drain on their critical
//    path, while systems that buffer and fence once per epoch pay it once
//    for the whole batch — the mechanism the paper exploits. All figure
//    benches use this mode.
//  * kTracked     — a cache-line-granularity shadow image records exactly
//    the bytes that have been written back AND fenced. simulate_crash()
//    discards everything else, after which recovery code runs against the
//    surviving image. Crash-consistency tests use this mode; it is strictly
//    harsher than real hardware (real caches may also evict lines that were
//    never flushed — evict_random_lines() injects that behaviour).
//    A fence commits every thread's outstanding writes-back, not just the
//    caller's: initiated write-backs sit in the memory controller's shared
//    write-pending queue, which any subsequent drain covers. (Montage's
//    epoch boundary relies on this: workers issue incremental writes-back
//    that the background advancer's fence must make durable.)
//
// The first 4 KiB of the region is a header with a small number of root
// slots; the allocator directory and the epoch clock live there.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/padded.hpp"
#include "util/telemetry.hpp"

namespace montage::nvm {

enum class PersistMode { kPassthrough, kLatency, kTracked };

/// Thrown by persist()/fence()/evict_random_lines() in kTracked mode when an
/// armed crash schedule reaches its event index (see Region::crash_at_event).
/// The event it interrupts does NOT take effect — power failed just before
/// it — so a harness that catches this, calls simulate_crash() and reruns
/// recovery observes exactly the crash state at that persistence boundary.
struct CrashPointException : public std::exception {
  /// Human-readable reason (std::exception interface).
  const char* what() const noexcept override {
    return "nvm: scheduled crash point reached";
  }
};

/// Thrown by persist()/fence()/evict_random_lines() in kTracked mode while a
/// transient-failure window is armed (see Region::fail_events): the device
/// reported EIO / a full write queue and the event did NOT take effect.
/// Unlike CrashPointException, the condition is transient — the caller may
/// retry, and each retry issues a new persistence event that marches through
/// the armed window until it succeeds.
struct IoError : public std::exception {
  /// Human-readable reason (std::exception interface).
  const char* what() const noexcept override {
    return "nvm: injected transient I/O error (EIO)";
  }
};

struct RegionOptions {
  std::size_t size = 64ull << 20;  ///< arena size in bytes (default 64 MiB)
  std::string path;                ///< backing file; empty = anonymous memory
  PersistMode mode = PersistMode::kPassthrough;
  uint64_t flush_latency_ns = 0;   ///< kLatency: drain time per flushed line
  uint64_t fence_latency_ns = 0;   ///< kLatency: fixed cost per fence
  /// kLatency: write-pending-queue depth, expressed as drain time. Issuing
  /// a write-back when the backlog exceeds this stalls the issuer
  /// (backpressure), as on real hardware.
  uint64_t wpq_backlog_ns = 10'000;
};

/// A consistent point-in-time aggregate of the region's persistence
/// traffic. Each field is the aggregate-on-read sum of per-thread sharded
/// slots (telemetry::ShardedCounter), so the snapshot never observes the
/// torn values a pair of contended process-wide atomics could yield.
struct RegionStatsSnapshot {
  uint64_t lines_flushed = 0;
  uint64_t fences = 0;
};

class Region {
 public:
  static constexpr std::size_t kLine = 64;
  static constexpr std::size_t kHeaderSize = 4096;
  static constexpr int kNumRoots = 8;
  static constexpr int kMaxThreads = 256;
  static constexpr uint64_t kMagic = 0x4D4F4E5441474531ull;  // "MONTAGE1"
  /// Persistent trace annex: header bytes [kTraceAnnexOffset, kHeaderSize)
  /// hold the serialized telemetry event trace dumped at an armed crash
  /// (and by recovery), so a post-crash trace survives in the region.
  static constexpr std::size_t kTraceAnnexOffset = 1024;
  static constexpr std::size_t kTraceAnnexSize =
      kHeaderSize - kTraceAnnexOffset;

  /// Map (or create) the arena; reads MONTAGE_CRASH_AT / MONTAGE_EIO_* /
  /// MONTAGE_TRACE / MONTAGE_STATS (strictly validated — garbage throws).
  explicit Region(const RegionOptions& opts);
  /// Unmap the arena, folding this region's flush/fence totals into the
  /// process-wide telemetry registry first.
  ~Region();
  Region(const Region&) = delete;
  Region& operator=(const Region&) = delete;

  /// Process-wide region used by the convenience singletons higher up the
  /// stack. init_global replaces any previous instance.
  static void init_global(const RegionOptions& opts);
  /// The process-wide region (nullptr before init_global).
  static Region* global();
  /// Unmap and forget the process-wide region (no-op when absent).
  static void destroy_global();

  /// Start of the mapped region (the 4 KiB header lives here).
  char* base() const { return base_; }
  /// Total mapped size in bytes, header included.
  std::size_t size() const { return opts_.size; }
  /// First allocatable byte, just past the header.
  char* arena_begin() const { return base_ + kHeaderSize; }
  /// One past the last mapped byte.
  char* arena_end() const { return base_ + opts_.size; }
  /// True when `p` points into the mapped region (header or arena).
  bool contains(const void* p) const {
    return p >= base_ && p < base_ + opts_.size;
  }
  /// The persistence-emulation mode this region was created with.
  PersistMode mode() const { return opts_.mode; }
  /// True when the constructor reopened an existing, validly formatted
  /// backing file (size and magic checked) instead of formatting a fresh
  /// header. A reopened region carries recoverable state — callers (e.g. the
  /// networked server after SIGKILL) should run allocator and epoch-clock
  /// recovery rather than a fresh format.
  bool reopened() const { return reopened_; }

  /// 64-bit root slots in the header. Callers persist them explicitly.
  std::atomic<uint64_t>& root(int i);

  /// clwb emulation: initiate write-back of every line covering [addr, len).
  /// Durability is only guaranteed after the next fence() by this thread.
  void persist(const void* addr, std::size_t len);

  /// sfence emulation: make this thread's outstanding writes-back durable.
  void fence();

  /// Cache-line index (relative to base()) covering the byte at `p`.
  /// `persist(p, len)` initiates write-back of exactly the lines
  /// [line_index(p), line_index(p + len - 1)]; coalescing write-back
  /// buffers use this to group pending payloads by destination line.
  uint64_t line_index(const void* p) const { return line_of(p); }

  /// Ranged clwb emulation: initiate write-back of `n` cache lines given by
  /// index (as returned by line_index()). Equivalent to one persist() per
  /// line but, in kTracked mode, each line counts as its OWN persistence
  /// event — so an armed crash schedule can fire between any two lines of a
  /// coalesced drain, and crash enumeration sweeps inside it. Durability is
  /// only guaranteed after the next fence(). Duplicate indices are legal
  /// (they flush twice); callers wanting dedup sort/unique first.
  void persist_lines(const uint64_t* lines, std::size_t n);

  /// persist() immediately ordered by a fence(): [addr, len) is durable on
  /// return.
  void persist_fence(const void* addr, std::size_t len) {
    persist(addr, len);
    fence();
  }

  /// kTracked only: throw away every store that was not persisted, leaving
  /// memory exactly as a crash would. Recovery code then runs on the result.
  void simulate_crash();

  /// kTracked only: spontaneously write back `n` random lines, emulating
  /// cache evictions of lines the program never flushed. Crash tests use
  /// this to check that recovery tolerates torn, unfenced state. Safe to
  /// call from a chaos thread while workers persist/fence concurrently.
  void evict_random_lines(uint64_t n, uint64_t seed);

  // ---- deterministic crash-schedule engine (kTracked only) -----------------
  //
  // Every persist()/fence()/evict_random_lines() call is a numbered
  // "persistence event" (1-based, monotonic for the Region's lifetime,
  // counting across simulate_crash() so recovery's own events keep
  // numbering). A harness runs a workload once to learn the event count,
  // then replays it with crash_at_event(n) armed for each n: the Nth event
  // throws CrashPointException before taking effect. Arming an index at or
  // below the current count never fires.
  //
  // Firing cuts the power for the whole process, not just the calling
  // thread: every subsequent persist/fence/evict from ANY thread throws
  // CrashPointException without counting an event, until simulate_crash()
  // restores power for recovery. Without the freeze, a concurrent thread
  // (cooperative epoch advance, a helping sync) could keep committing
  // events between the armed one and the crash image being taken — e.g.
  // re-persist the epoch clock over a write-back that died with the
  // "power", and so acknowledge durability the image does not contain.
  //
  // MONTAGE_CRASH_AT=<n> arms the schedule at construction, for driving
  // whole binaries from the environment.

  /// Number of persistence events issued so far (kTracked; else 0).
  uint64_t persistence_events() const {
    return events_.load(std::memory_order_relaxed);
  }
  /// Arm the schedule: the event with 1-based index `n` throws. 0 disarms.
  void crash_at_event(uint64_t n) {
    crash_at_.store(n, std::memory_order_relaxed);
  }
  /// Disarm any pending crash schedule.
  void clear_crash_schedule() { crash_at_event(0); }

  /// Arm a transient-failure window: persistence events with 1-based index
  /// in [from, from + count) throw IoError instead of taking effect. A
  /// retrying caller issues fresh events and exits the window after `count`
  /// failures; an armed crash schedule takes precedence over the window.
  /// `from` = 0 disarms. MONTAGE_EIO_AT / MONTAGE_EIO_COUNT (default 1) arm
  /// this at construction, like MONTAGE_CRASH_AT.
  void fail_events(uint64_t from, uint64_t count) {
    eio_count_.store(count, std::memory_order_relaxed);
    eio_from_.store(from, std::memory_order_relaxed);
  }
  /// Disarm any pending transient-failure window.
  void clear_eio_schedule() { fail_events(0, 0); }

  /// Consistent aggregate of lines flushed / fences issued since the last
  /// reset_stats() (aggregate-on-read over per-thread shards).
  RegionStatsSnapshot stats() const;
  /// Zero the flush/fence statistics (adds racing with the reset may
  /// survive into the next snapshot).
  void reset_stats();

  /// Serialize the live telemetry event trace into the persistent annex
  /// ([kTraceAnnexOffset, kHeaderSize)). In kTracked mode the annex lines
  /// are committed straight to the crash shadow — emulating the eADR-style
  /// flush-on-power-fail window — WITHOUT counting persistence events, so
  /// crash-schedule numbering is unchanged. Called automatically when an
  /// armed crash fires; no-op when tracing is off or compiled out.
  void dump_trace_annex();

  /// Deserialize the annex left by a pre-crash dump_trace_annex(); empty if
  /// no (valid) annex is present. EpochSys::recover() restores this into
  /// the live trace so post-crash diagnosis sees pre-crash history.
  std::vector<telemetry::TraceEvent> crash_trace() const;

 private:
  struct alignas(util::kCacheLineSize) PendingLines {
    std::mutex m;                 // kTracked only; guards `lines`
    std::vector<uint64_t> lines;  // line indices flushed but not yet fenced
    uint64_t drain_clock_ns = 0;  // kLatency: when this thread's WPQ drains
  };

  uint64_t line_of(const void* p) const {
    return (static_cast<const char*>(p) - base_) / kLine;
  }
  void commit_line(uint64_t line);
  PendingLines& my_pending();
  /// kTracked: count one persistence event; throw if the schedule fires.
  void bump_event();

  RegionOptions opts_;
  char* base_ = nullptr;
  int fd_ = -1;
  bool reopened_ = false;  // existing valid backing file found at open
  std::unique_ptr<char[]> shadow_;  // kTracked persistent image
  std::mutex commit_m_;  // kTracked: serializes shadow commits (fence/evict)
  std::unique_ptr<PendingLines[]> pending_;
  telemetry::ShardedCounter lines_flushed_;  // per-thread shards; see stats()
  telemetry::ShardedCounter fences_;
  int gauge_lines_ = -1;  // telemetry gauge handles (unregistered in dtor)
  int gauge_fences_ = -1;
  std::atomic<uint64_t> events_{0};    // kTracked persistence-event clock
  std::atomic<uint64_t> crash_at_{0};  // 0 = disarmed
  std::atomic<bool> frozen_{false};    // armed event fired; power stays off
                                       // until simulate_crash()
  std::atomic<uint64_t> eio_from_{0};  // EIO window start; 0 = disarmed
  std::atomic<uint64_t> eio_count_{0};
};

/// Convenience wrapper: Region::global()->persist(p, n).
inline void persist(const void* p, std::size_t n) {
  Region::global()->persist(p, n);
}
/// Convenience wrapper: Region::global()->fence().
inline void fence() { Region::global()->fence(); }
/// Convenience wrapper: Region::global()->persist_fence(p, n).
inline void persist_fence(const void* p, std::size_t n) {
  Region::global()->persist_fence(p, n);
}

}  // namespace montage::nvm
