// YCSB core-workload generator (Cooper et al.), as used by the paper's
// memcached experiment (Fig. 10): workload A is 50% reads / 50% updates over
// a zipfian-popular key space of N records, keys formatted "user<hash>".
#pragma once

#include <cstdint>
#include <string>

#include "kvstore/memcache.hpp"
#include "util/rand.hpp"
#include "util/zipf.hpp"

namespace montage::kvstore {

enum class YcsbOp { kRead, kUpdate, kInsert, kScan };

struct YcsbAConfig {
  uint64_t record_count = 1'000'000;
  double read_fraction = 0.5;  // workload A: 50/50 read:update
  double zipf_theta = 0.99;
};

class YcsbAGenerator {
 public:
  YcsbAGenerator(const YcsbAConfig& cfg, uint64_t seed)
      : cfg_(cfg), zipf_(cfg.record_count, cfg.zipf_theta, seed), rng_(seed) {}

  static CacheKey key_for(uint64_t record) {
    return CacheKey("user" + std::to_string(record));
  }

  struct Op {
    YcsbOp type;
    CacheKey key;
  };

  Op next() {
    const uint64_t rec = zipf_.next_scrambled();
    const YcsbOp type = rng_.next_double() < cfg_.read_fraction
                            ? YcsbOp::kRead
                            : YcsbOp::kUpdate;
    return Op{type, key_for(rec)};
  }

  /// Run one op against any cache with get/set.
  template <typename Cache>
  void apply(Cache& cache, const Op& op, const CacheValue& payload) {
    if (op.type == YcsbOp::kRead) {
      cache.get(op.key);
    } else {
      cache.set(op.key, payload);
    }
  }

  /// Preload all records.
  template <typename Cache>
  static void load(Cache& cache, uint64_t record_count,
                   const CacheValue& payload) {
    for (uint64_t r = 0; r < record_count; ++r) {
      cache.set(key_for(r), payload);
    }
  }

 private:
  YcsbAConfig cfg_;
  util::ZipfianGenerator zipf_;
  util::Xorshift128Plus rng_;
};

}  // namespace montage::kvstore
