// Embedded memcached-like key-value cache, in the spirit of the
// library-linked memcached variant of Kjellqvist et al. (ICPP'20) that the
// paper persists with Montage (§6.2): the client calls into the cache
// directly (no sockets), items carry flags and expiry, and each shard keeps
// a hash index plus an LRU list with capacity-based eviction.
//
// Two implementations share the same interface:
//  * TransientMemCache<Mem> — "DRAM (T)" / "NVM (T)": no persistence.
//  * MontageMemCache        — items are Montage payloads; index and LRU are
//    transient and rebuilt at recovery (LRU recency, like in any restarted
//    cache, resets).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ds/transient.hpp"
#include "montage/recoverable.hpp"
#include "util/inline_str.hpp"
#include "util/padded.hpp"

namespace montage::kvstore {

using CacheKey = util::InlineStr<64>;
using CacheValue = util::InlineStr<1024>;

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// Transient reference cache; Mem selects DRAM vs NVM node placement.
template <typename Mem = ds::DramMem>
class TransientMemCache {
 public:
  TransientMemCache(std::size_t nshards, std::size_t capacity_per_shard)
      : shards_(nshards), capacity_(capacity_per_shard) {}

  ~TransientMemCache() {
    for (auto& s : shards_) {
      for (auto& [k, it] : s.index) destroy(*it);
    }
  }

  bool set(const CacheKey& key, const CacheValue& val, uint32_t flags = 0,
           uint64_t exptime = 0) {
    Shard& s = shard_of(key);
    std::lock_guard lk(s.lock);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      Item& item = *it->second;
      item.val = val;
      item.flags = flags;
      item.exptime = exptime;
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return true;
    }
    evict_if_full(s);
    s.lru.push_front(Item{key, val, flags, exptime});
    s.index.emplace(key, s.lru.begin());
    return true;
  }

  std::optional<CacheValue> get(const CacheKey& key, uint32_t* flags = nullptr,
                                uint64_t now = 0) {
    Shard& s = shard_of(key);
    std::lock_guard lk(s.lock);
    auto it = s.index.find(key);
    if (it == s.index.end() || expired(*it->second, now)) {
      if (it != s.index.end()) {
        // Lazy expiry frees the slot; it counts as an eviction so capacity
        // accounting matches what actually left the cache.
        erase(s, it);
        s.evictions.fetch_add(1, std::memory_order_relaxed);
      }
      s.misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    s.hits.fetch_add(1, std::memory_order_relaxed);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    if (flags != nullptr) *flags = it->second->flags;
    return std::optional<CacheValue>(it->second->val);
  }

  bool del(const CacheKey& key) {
    Shard& s = shard_of(key);
    std::lock_guard lk(s.lock);
    auto it = s.index.find(key);
    if (it == s.index.end()) return false;
    erase(s, it);
    return true;
  }

  /// add: only if absent (memcached semantics). An item that has expired by
  /// `now` counts as absent: it is lazily evicted and the add succeeds.
  bool add(const CacheKey& key, const CacheValue& val, uint32_t flags = 0,
           uint64_t exptime = 0, uint64_t now = 0) {
    Shard& s = shard_of(key);
    std::lock_guard lk(s.lock);
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      if (!expired(*it->second, now)) return false;
      erase(s, it);
      s.evictions.fetch_add(1, std::memory_order_relaxed);
    }
    evict_if_full(s);
    s.lru.push_front(Item{key, val, flags, exptime});
    s.index.emplace(key, s.lru.begin());
    return true;
  }

  CacheStats stats() const {
    CacheStats out;
    for (const auto& s : shards_) {
      out.hits += s.hits.load(std::memory_order_relaxed);
      out.misses += s.misses.load(std::memory_order_relaxed);
      out.evictions += s.evictions.load(std::memory_order_relaxed);
    }
    return out;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s.index.size();
    return n;
  }

 private:
  struct Item {
    CacheKey key;
    CacheValue val;
    uint32_t flags;
    uint64_t exptime;
  };
  struct alignas(util::kCacheLineSize) Shard {
    std::mutex lock;
    std::list<Item> lru;  // front = most recent
    std::unordered_map<CacheKey, typename std::list<Item>::iterator> index;
    std::atomic<uint64_t> hits{0}, misses{0}, evictions{0};
  };

  static bool expired(const Item& item, uint64_t now) {
    return item.exptime != 0 && now >= item.exptime;
  }

  void evict_if_full(Shard& s) {
    while (s.index.size() >= capacity_) {
      auto last = std::prev(s.lru.end());
      s.index.erase(last->key);
      destroy(*last);
      s.lru.erase(last);
      s.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void erase(Shard& s, typename decltype(Shard::index)::iterator it) {
    destroy(*it->second);
    s.lru.erase(it->second);
    s.index.erase(it);
  }

  void destroy(Item&) {}  // std::list owns the storage here

  Shard& shard_of(const CacheKey& key) {
    return shards_[std::hash<CacheKey>{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::size_t capacity_;
};

/// Montage-persistent memcached: items are payloads, everything else is
/// transient. Fully recoverable (modulo the two-epoch window, §3.2).
class MontageMemCache : public Recoverable {
 public:
  static constexpr uint32_t kPayloadTag = 0x4d43;  // 'MC'

  class ItemPayload : public PBlk {
   public:
    ItemPayload() = default;
    ItemPayload(const CacheKey& k, const CacheValue& v, uint32_t f,
                uint64_t e) {
      m_key = k;
      m_val = v;
      m_flags = f;
      m_exptime = e;
    }
    GENERATE_FIELD(CacheKey, key, ItemPayload);
    GENERATE_FIELD(CacheValue, val, ItemPayload);
    GENERATE_FIELD(uint32_t, flags, ItemPayload);
    GENERATE_FIELD(uint64_t, exptime, ItemPayload);
  };

  MontageMemCache(EpochSys* esys, std::size_t nshards,
                  std::size_t capacity_per_shard)
      : Recoverable(esys), shards_(nshards), capacity_(capacity_per_shard) {}

  ~MontageMemCache() override = default;

  bool set(const CacheKey& key, const CacheValue& val, uint32_t flags = 0,
           uint64_t exptime = 0) {
    Shard& s = shard_of(key);
    std::lock_guard lk(s.lock);
    BEGIN_OP_AUTOEND();
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      Item& item = *it->second;
      item.payload = item.payload->set_val(val);
      if (flags != item.payload->get_flags()) {
        item.payload = item.payload->set_flags(flags);
      }
      if (exptime != item.payload->get_exptime()) {
        // An overwrite installs the new item's lifetime — including
        // exptime=0, which revives a key that was about to lapse.
        item.payload = item.payload->set_exptime(exptime);
      }
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return true;
    }
    evict_if_full(s);
    ItemPayload* p = esys_->pnew<ItemPayload>(key, val, flags, exptime);
    p->set_blk_tag(kPayloadTag);
    s.lru.push_front(Item{key, p});
    s.index.emplace(key, s.lru.begin());
    return true;
  }

  std::optional<CacheValue> get(const CacheKey& key, uint32_t* flags = nullptr,
                                uint64_t now = 0) {
    Shard& s = shard_of(key);
    std::lock_guard lk(s.lock);
    auto it = s.index.find(key);
    if (it == s.index.end()) {
      s.misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    Item& item = *it->second;
    const uint64_t exp = item.payload->get_exptime();
    if (exp != 0 && now >= exp) {
      // Lazy expiry: remove the item durably. It leaves the cache for good,
      // so it counts as an eviction as well as a miss.
      BEGIN_OP_AUTOEND();
      esys_->pdelete(item.payload);
      s.lru.erase(it->second);
      s.index.erase(it);
      s.misses.fetch_add(1, std::memory_order_relaxed);
      s.evictions.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    s.hits.fetch_add(1, std::memory_order_relaxed);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    if (flags != nullptr) *flags = item.payload->get_flags();
    return std::optional<CacheValue>(item.payload->get_val());
  }

  bool del(const CacheKey& key) {
    Shard& s = shard_of(key);
    std::lock_guard lk(s.lock);
    auto it = s.index.find(key);
    if (it == s.index.end()) return false;
    BEGIN_OP_AUTOEND();
    esys_->pdelete(it->second->payload);
    s.lru.erase(it->second);
    s.index.erase(it);
    return true;
  }

  /// add: only if absent. As in memcached, an item that has expired by `now`
  /// counts as absent — it is lazily evicted and the add succeeds.
  bool add(const CacheKey& key, const CacheValue& val, uint32_t flags = 0,
           uint64_t exptime = 0, uint64_t now = 0) {
    Shard& s = shard_of(key);
    std::lock_guard lk(s.lock);
    BEGIN_OP_AUTOEND();
    auto it = s.index.find(key);
    if (it != s.index.end()) {
      const uint64_t exp = it->second->payload->get_exptime();
      if (exp == 0 || now < exp) return false;
      esys_->pdelete(it->second->payload);
      s.lru.erase(it->second);
      s.index.erase(it);
      s.evictions.fetch_add(1, std::memory_order_relaxed);
    }
    evict_if_full(s);
    ItemPayload* p = esys_->pnew<ItemPayload>(key, val, flags, exptime);
    p->set_blk_tag(kPayloadTag);
    s.lru.push_front(Item{key, p});
    s.index.emplace(key, s.lru.begin());
    return true;
  }

  /// memcached incr/decr: numeric string value adjusted by `delta`. The
  /// delta is unsigned with an explicit direction, as in memcached itself —
  /// a signed delta could not represent steps >= 2^63 without overflow.
  /// incr wraps at 2^64, decr saturates at zero (both memcached rules).
  /// Returns the new value, or nullopt on miss or a non-numeric value.
  std::optional<uint64_t> incr(const CacheKey& key, uint64_t delta) {
    return adjust(key, delta, /*negative=*/false);
  }
  std::optional<uint64_t> decr(const CacheKey& key, uint64_t delta) {
    return adjust(key, delta, /*negative=*/true);
  }

  CacheStats stats() const {
    CacheStats out;
    for (const auto& s : shards_) {
      out.hits += s.hits.load(std::memory_order_relaxed);
      out.misses += s.misses.load(std::memory_order_relaxed);
      out.evictions += s.evictions.load(std::memory_order_relaxed);
    }
    return out;
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s.index.size();
    return n;
  }

  /// Rebuild the index/LRU from recovered payloads (recency is reset, as in
  /// any restarted cache).
  void recover(const std::vector<PBlk*>& blocks) {
    for (PBlk* b : blocks) {
      auto* p = static_cast<ItemPayload*>(b);
      if (p->blk_tag() != kPayloadTag) continue;
      Shard& s = shard_of(p->get_unsafe_key());
      std::lock_guard lk(s.lock);
      s.lru.push_front(Item{p->get_unsafe_key(), p});
      s.index.emplace(p->get_unsafe_key(), s.lru.begin());
    }
  }

 private:
  struct Item {
    CacheKey key;
    ItemPayload* payload;
  };
  struct alignas(util::kCacheLineSize) Shard {
    std::mutex lock;
    std::list<Item> lru;
    std::unordered_map<CacheKey, typename std::list<Item>::iterator> index;
    std::atomic<uint64_t> hits{0}, misses{0}, evictions{0};
  };

  std::optional<uint64_t> adjust(const CacheKey& key, uint64_t delta,
                                 bool negative) {
    Shard& s = shard_of(key);
    std::lock_guard lk(s.lock);
    auto it = s.index.find(key);
    if (it == s.index.end()) return std::nullopt;
    Item& item = *it->second;
    const std::string cur = item.payload->get_val().str();
    if (cur.empty() ||
        cur.find_first_not_of("0123456789") != std::string::npos) {
      return std::nullopt;
    }
    uint64_t v = std::strtoull(cur.c_str(), nullptr, 10);
    if (negative) {
      v = delta > v ? 0 : v - delta;  // decr saturates at zero
    } else {
      v += delta;  // incr wraps at 2^64
    }
    BEGIN_OP_AUTOEND();
    item.payload = item.payload->set_val(CacheValue(std::to_string(v)));
    return v;
  }

  /// Caller holds the shard lock and an active operation.
  void evict_if_full(Shard& s) {
    while (s.index.size() >= capacity_) {
      auto last = std::prev(s.lru.end());
      esys_->pdelete(last->payload);
      s.index.erase(last->key);
      s.lru.erase(last);
      s.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  Shard& shard_of(const CacheKey& key) {
    return shards_[std::hash<CacheKey>{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::size_t capacity_;
};

}  // namespace montage::kvstore
