#!/usr/bin/env bash
# Sanitizer check: configure a dedicated build tree, build everything, and
# run the test suite. MONTAGE_SANITIZE picks the sanitizer set (default
# address,undefined); each set gets its own build tree. Pass extra ctest
# args through, e.g.:
#   scripts/check.sh -L slow                   # only the slow label
#   scripts/check.sh -R Ralloc                 # a single suite
#   MONTAGE_SANITIZE=thread scripts/check.sh   # TSan (races in the
#                                              # advancer/watchdog/adoption
#                                              # paths)
set -euo pipefail

cd "$(dirname "$0")/.."
SAN=${MONTAGE_SANITIZE:-address,undefined}
BUILD_DIR=${BUILD_DIR:-build-${SAN//,/-}}

scripts/check_docs.sh

cmake -B "$BUILD_DIR" -S . -DMONTAGE_SANITIZE="$SAN"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"

# Kill-switch leg: telemetry compiled out must still build everything and
# pass its own tests (the instrumented call sites become empty inlines).
OFF_DIR=build-telemetry-off
cmake -B "$OFF_DIR" -S . -DMONTAGE_TELEMETRY=OFF
cmake --build "$OFF_DIR" -j "$(nproc)"
ctest --test-dir "$OFF_DIR" --output-on-failure -j "$(nproc)" \
  -R "Telemetry|ShardedCounter|Region|EpochBasic" "$@"
