#!/usr/bin/env bash
# Sanitizer check: configure a dedicated build tree, build everything, and
# run the test suite. MONTAGE_SANITIZE picks the sanitizer set (default
# address,undefined); each set gets its own build tree. Pass extra ctest
# args through, e.g.:
#   scripts/check.sh -L slow                   # only the slow label
#   scripts/check.sh -L server_smoke           # the networked-server
#                                              # envelope (also part of the
#                                              # default and TSan suites)
#   scripts/check.sh -R Ralloc                 # a single suite
#   MONTAGE_SANITIZE=thread scripts/check.sh   # TSan (races in the
#                                              # advancer/watchdog/adoption
#                                              # paths)
set -euo pipefail

cd "$(dirname "$0")/.."
SAN=${MONTAGE_SANITIZE:-address,undefined}
BUILD_DIR=${BUILD_DIR:-build-${SAN//,/-}}

scripts/check_docs.sh

cmake -B "$BUILD_DIR" -S . -DMONTAGE_SANITIZE="$SAN"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"

# Live-scrape leg (DESIGN.md §14): boot the real server with the admin plane
# on an ephemeral port, fetch /metrics over plain TCP, and validate the body
# with the same strict parser the unit tests link (metrics_lint). Run against
# the telemetry-OFF tree too: with the registry compiled out the endpoint
# must still serve a minimal, parser-valid payload.
scrape_metrics() {
  local tree=$1 label=$2
  local tmp pid admin_port
  tmp=$(mktemp -d)
  MONTAGE_SERVER_PORT=0 MONTAGE_SERVER_ADMIN_PORT=0 \
  MONTAGE_SERVER_REGION_MB=64 \
    "$tree/src/montage_kv_server" --port-file="$tmp/port" &
  pid=$!
  for _ in $(seq 1 200); do
    [[ -s "$tmp/port" ]] && break
    sleep 0.05
  done
  admin_port=$(sed -n 2p "$tmp/port")
  [[ -n "$admin_port" ]] || { echo "check: $label: no admin port" >&2; exit 1; }
  exec 3<>"/dev/tcp/127.0.0.1/$admin_port"
  printf 'GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n' >&3
  sed -e '1,/^\r$/d' <&3 > "$tmp/metrics"   # drop status line + headers
  exec 3<&- 3>&-
  "$tree/src/metrics_lint" < "$tmp/metrics"
  grep -q '^montage_up 1$' "$tmp/metrics"
  kill -TERM "$pid"
  wait "$pid"
  rm -rf "$tmp"
  echo "check: $label /metrics scrape OK"
}
scrape_metrics "$BUILD_DIR" "sanitized"

# Kill-switch leg: telemetry compiled out must still build everything and
# pass its own tests (the instrumented call sites become empty inlines).
# The server suites run here too: `stats` and the shed/stall accounting are
# built on ShardedCounter, which must keep working with telemetry off.
OFF_DIR=build-telemetry-off
cmake -B "$OFF_DIR" -S . -DMONTAGE_TELEMETRY=OFF
cmake --build "$OFF_DIR" -j "$(nproc)"
ctest --test-dir "$OFF_DIR" --output-on-failure -j "$(nproc)" \
  -R "Telemetry|ShardedCounter|Region|EpochBasic|PerfCounters|ServerConfig|Protocol|ServerSmoke|Coalesce|Promexpo|RateWindow|Log" \
  "$@"
scrape_metrics "$OFF_DIR" "telemetry-off"

# Coalescing kill-switch leg: MONTAGE_WB_COALESCE=0 forces one flush per
# payload on the telemetry-OFF build — the most-stripped configuration must
# still hold the durability guarantees on the fallback write-back path.
MONTAGE_WB_COALESCE=0 ctest --test-dir "$OFF_DIR" --output-on-failure \
  -j "$(nproc)" \
  -R "Region|EpochBasic|Coalesce" \
  "$@"

# Shard kill-switch leg (DESIGN.md §15): MONTAGE_EPOCH_SHARDS=1 must
# reproduce the exact pre-sharding epoch system — flat boundary drain,
# mutex-only registration, one allocator arena — on the recovery-critical
# suites of the sanitized tree.
MONTAGE_EPOCH_SHARDS=1 ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -j "$(nproc)" \
  -R "CrashEnumeration|CrashSchedule|EpochBasic|Recovery|Ralloc" \
  "$@"

# Cooperative-advance leg: the advancer-free tick path is the raciest code
# in the tree (any thread may CAS the clock while helping peers' write-
# backs), and the telemetry kill-switch changes which code is compiled in.
# Build it under TSan WITH telemetry off and run the liveness/pacing
# suites, so a race hiding behind counter call sites can't slip through.
COOP_DIR=build-thread-telemetry-off
cmake -B "$COOP_DIR" -S . -DMONTAGE_SANITIZE=thread -DMONTAGE_TELEMETRY=OFF
cmake --build "$COOP_DIR" -j "$(nproc)"
ctest --test-dir "$COOP_DIR" --output-on-failure -j "$(nproc)" \
  -R "ThreadFailure|CooperativeWatchdog" "$@"

# Sharded-drain race leg (DESIGN.md §15): force four epoch shards under
# TSan so the drain-ticket claims, the SPSC staged registrations, and the
# takeover pass all race the advancer with the race detector watching.
MONTAGE_EPOCH_SHARDS=4 ctest --test-dir "$COOP_DIR" --output-on-failure \
  -j "$(nproc)" \
  -R "ThreadFailure|CooperativeWatchdog" "$@"

# Smoke-perf leg (opt in with MONTAGE_SMOKE_PERF=1): a tiny un-sanitized
# orchestrator run gated against the committed baseline. The threshold is
# deliberately generous and only throughput series are gated
# (--rates-only): at 20 ms per point this proves the pipeline and catches
# order-of-magnitude cliffs, not 10% drifts — and tail percentiles from a
# handful of samples are pure noise at this scale. lines_per_op series
# (fig8/fig9) stay gated even under --rates-only: flushes per op are
# deterministic counts, and a regression there means the coalescing
# write-back path stopped deduplicating.
if [[ "${MONTAGE_SMOKE_PERF:-0}" == "1" ]]; then
  PERF_DIR=build-smoke-perf
  cmake -B "$PERF_DIR" -S .
  cmake --build "$PERF_DIR" -j "$(nproc)" --target orchestrator compare \
    fig4_design_hashmap fig8_payload fig9_sync fig15_server fig16_scaling \
    montage_kv_server
  MONTAGE_BENCH_SECONDS=${MONTAGE_BENCH_SECONDS:-0.02} \
  MONTAGE_BENCH_THREADS=${MONTAGE_BENCH_THREADS:-2} \
  MONTAGE_BENCH_SCALE=${MONTAGE_BENCH_SCALE:-0.002} \
    "$PERF_DIR/bench/orchestrator" --figures=4,8,9,15,16 \
    --out="$PERF_DIR/BENCH_smoke.json"
  "$PERF_DIR/bench/compare" results/BENCH_baseline.json \
    "$PERF_DIR/BENCH_smoke.json" --threshold=0.90 --rates-only
fi
