#!/usr/bin/env bash
# ASan+UBSan check: configure a dedicated build tree with
# MONTAGE_SANITIZE=address,undefined, build everything, and run the test
# suite. Pass extra ctest args through, e.g.:
#   scripts/check.sh -L slow        # only the crash-enumeration sweep
#   scripts/check.sh -R Ralloc      # a single suite
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DMONTAGE_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
