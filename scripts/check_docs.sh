#!/usr/bin/env bash
# Documentation lint for the public observability/API surface: every public
# method or free-function declaration in the headers below must carry a doc
# comment (a // line directly above, or a trailing // on the same line).
#
# The checker is a small awk scope tracker, not a C++ parser: it counts
# braces (comments stripped), remembers whether the enclosing scope is a
# namespace, a class after `public:`, a struct, or something to skip (enum
# bodies, function bodies, private/protected sections), and flags
# declaration-looking lines in public scope with no comment attached.
# Preprocessor lines, continuation lines, and `= delete`/`= default`
# declarations are exempt.
set -euo pipefail
cd "$(dirname "$0")/.."

HEADERS=(
  src/montage/epoch_sys.hpp
  src/montage/recoverable.hpp
  src/nvm/region.hpp
  src/util/telemetry.hpp
  src/util/perfcounters.hpp
  src/server/config.hpp
  src/server/protocol.hpp
  src/server/kv_server.hpp
  src/util/promexpo.hpp
  src/util/log.hpp
)

fail=0
for h in "${HEADERS[@]}"; do
  if awk '
    function strip(line) { sub(/\/\/.*$/, "", line); return line }
    function classify(code) {
      if (code ~ /(^|[^A-Za-z0-9_])namespace([^A-Za-z0-9_]|$)/) return "ns"
      if (code ~ /(^|[^A-Za-z0-9_])enum([^A-Za-z0-9_]|$)/) return "skip"
      if (code ~ /(^|[^A-Za-z0-9_])class([^A-Za-z0-9_]|$)/) return "nonpublic"
      if (code ~ /(^|[^A-Za-z0-9_])(struct|union)([^A-Za-z0-9_]|$)/) return "public"
      return "skip"
    }
    BEGIN { depth = 0; scope[0] = "ns"; bad = 0 }
    {
      raw = $0
      # Preprocessor lines (and their backslash continuations) are exempt.
      if (in_pp) { if (raw !~ /\\$/) in_pp = 0; prev_doc = 0; next }
      if (raw ~ /^[[:space:]]*#/) {
        if (raw ~ /\\$/) in_pp = 1
        prev_doc = 0; next
      }
      code = strip(raw)
      gsub(/[[:space:]]+$/, "", code)

      # Pure comment lines document whatever follows.
      if (raw ~ /^[[:space:]]*\/\//) { prev_doc = 1; next }
      # template<...> and attribute lines are transparent: a doc comment
      # above them still covers the declaration underneath.
      if (code ~ /^[[:space:]]*template[[:space:]<]/) { prev_cont = 0; next }

      # Access labels switch the class scope.
      if (code ~ /^[[:space:]]*(public|protected|private)[[:space:]]*:[[:space:]]*$/) {
        scope[depth] = (code ~ /public/) ? "public" : "nonpublic"
        prev_doc = 0; prev_cont = 0; next
      }

      # Candidate: a declaration-looking line in documented-required scope.
      st = scope[depth]
      if ((st == "public" || st == "ns") && !prev_cont &&
          code ~ /^[[:space:]]*[A-Za-z_~][A-Za-z0-9_:<>,*& \t~\[\]]*\(/ &&
          code !~ /=[[:space:]]*(delete|default)/ &&
          code !~ /^[[:space:]]*(if|for|while|switch|return|throw|sizeof)[[:space:](]/ &&
          code !~ /^[[:space:]]*(class|struct|enum|union|namespace|using|typedef|static_assert|friend|extern)([^A-Za-z0-9_]|$)/) {
        if (!prev_doc && raw !~ /\/\//) {
          printf "%s:%d: undocumented public symbol: %s\n", FILENAME, FNR, raw
          bad = 1
        }
      }

      # Continuation: the next line belongs to this declaration.
      prev_cont = (code ~ /[,(=]$/ || code ~ /(&&|\|\|)$/)

      # Brace tracking (first { of the line takes the line classification).
      cls = classify(code); first = 1
      n = length(code)
      for (i = 1; i <= n; i++) {
        c = substr(code, i, 1)
        if (c == "{") {
          depth++
          scope[depth] = first ? cls : "skip"
          first = 0
        } else if (c == "}" && depth > 0) {
          depth--
        }
      }
      prev_doc = 0
    }
    END { exit bad }
  ' "$h"; then
    echo "check_docs: $h OK"
  else
    fail=1
  fi
done

# Metric-catalog coverage: every counter/histogram name registered in
# telemetry.cpp must appear in DESIGN.md (the §9 metric tables), so a new
# metric cannot ship without a documentation row.
metric_fail=0
while IFS= read -r m; do
  if ! grep -qF "\`$m\`" DESIGN.md; then
    echo "check_docs: DESIGN.md missing metric doc for $m"
    metric_fail=1
  fi
done < <(awk '/constexpr Meta (kCounterMeta|kHistMeta)\[/ { in_cat = 1; next }
              in_cat && /^};/ { in_cat = 0 }
              in_cat && match($0, /\{"[^"]+"/) {
                print substr($0, RSTART + 2, RLENGTH - 3)
              }' src/util/telemetry.cpp)
if [[ $metric_fail -eq 0 ]]; then
  echo "check_docs: metric catalog documented OK"
else
  fail=1
fi

exit $fail
